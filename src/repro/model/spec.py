"""Model specification: the whole-forward shape the plan compiler consumes.

A served transformer forward is ``num_layers`` encoder layers, each running
``num_heads`` attention heads over the same ``seq_len`` plus an MLP block.
:class:`ModelSpec` captures exactly the parameters that fix a forward's
*execution shape* — per-layer attention geometry (window / global / random
token budgets), the model-wide head count and head dimensionality, the MLP
width and the sequence length — without carrying weights or data.  Everything
downstream derives from it deterministically:

* :class:`~repro.model.plan.ModelPlanCompiler` maps each layer to a
  :class:`~repro.core.config.SWATConfig` via :meth:`ModelSpec.layer_config`
  and deduplicates the compiled per-shape execution plans;
* :class:`~repro.model.executor.ModelExecutor` builds seeded weights of the
  spec's dimensions and runs the forward;
* the serving layer's ``ForwardRequest`` carries a spec (plus optional input
  embeddings) instead of raw Q/K/V, so one request prices and executes an
  entire forward pass.

The spec deliberately does **not** fix the datapath (precision, clock,
pipeline replication): those belong to the accelerator a forward is served
*on*, so :meth:`layer_config` grafts the per-layer schedule geometry onto a
caller-supplied base :class:`~repro.core.config.SWATConfig` — the serving
backends pass their own.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import SWATConfig

__all__ = ["LayerGeometry", "ModelSpec"]


@dataclass(frozen=True)
class LayerGeometry:
    """Attention-schedule geometry of one encoder layer.

    The fields mirror the schedule-relevant knobs of
    :class:`~repro.core.config.SWATConfig`: two layers with equal geometry
    (and equal ``seq_len``/``head_dim``) share one compiled execution plan.
    """

    window_tokens: int
    num_global_tokens: int = 0
    num_random_tokens: int = 0
    random_seed: int = 0

    def __post_init__(self) -> None:
        if self.window_tokens <= 0 or self.window_tokens % 2 != 0:
            raise ValueError(
                f"window_tokens (2w) must be positive and even, got {self.window_tokens}"
            )
        if self.num_global_tokens < 0 or self.num_random_tokens < 0:
            raise ValueError("global/random token counts must be non-negative")

    def fingerprint(self) -> "tuple[object, ...]":
        """Hashable identity of this geometry (a slice of the plan-cache key)."""
        return (
            self.window_tokens,
            self.num_global_tokens,
            self.num_random_tokens,
            self.random_seed,
        )


@dataclass(frozen=True)
class ModelSpec:
    """The execution shape of one whole transformer forward.

    Attributes
    ----------
    seq_len:
        Tokens per forward (every layer attends the same rows).
    layers:
        Per-layer attention geometry; ``len(layers)`` is the model depth.
    num_heads:
        Attention heads per layer (model-wide — the hidden dimension is
        ``num_heads * head_dim`` and must be constant for the residuals).
    head_dim:
        Head dimensionality ``H``.
    mlp_dim:
        Width of the position-wise MLP (defaults to ``4 * hidden_dim``).
    """

    seq_len: int
    layers: "tuple[LayerGeometry, ...]"
    num_heads: int = 4
    head_dim: int = 64
    mlp_dim: "int | None" = None

    def __post_init__(self) -> None:
        if self.seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {self.seq_len}")
        if not self.layers:
            raise ValueError("a model needs at least one layer")
        object.__setattr__(self, "layers", tuple(self.layers))
        if not all(isinstance(layer, LayerGeometry) for layer in self.layers):
            raise TypeError("layers must be LayerGeometry instances")
        if self.num_heads <= 0 or self.head_dim <= 0:
            raise ValueError("num_heads and head_dim must be positive")
        if self.mlp_dim is None:
            object.__setattr__(self, "mlp_dim", 4 * self.hidden_dim)
        elif self.mlp_dim <= 0:
            raise ValueError(f"mlp_dim must be positive, got {self.mlp_dim}")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def num_layers(self) -> int:
        """Model depth."""
        return len(self.layers)

    @property
    def hidden_dim(self) -> int:
        """Residual-stream width ``num_heads * head_dim``."""
        return self.num_heads * self.head_dim

    @property
    def head_rows(self) -> int:
        """Accounted ``num_layers * num_heads * seq_len`` work units of one forward."""
        return self.num_layers * self.num_heads * self.seq_len

    def layer_config(self, index: int, base: "SWATConfig | None" = None) -> SWATConfig:
        """The :class:`~repro.core.config.SWATConfig` of layer ``index``.

        The layer's schedule geometry is grafted onto ``base`` (which supplies
        the datapath: precision, clock, pipeline replication, device); the
        spec's ``head_dim`` always wins because the data shapes depend on it.
        """
        if not 0 <= index < self.num_layers:
            raise ValueError(f"layer index {index} out of range [0, {self.num_layers})")
        base = base if base is not None else SWATConfig()
        layer = self.layers[index]
        return replace(
            base,
            head_dim=self.head_dim,
            window_tokens=layer.window_tokens,
            num_global_tokens=layer.num_global_tokens,
            num_random_tokens=layer.num_random_tokens,
            random_seed=layer.random_seed,
        )

    def fingerprint(self) -> "tuple[object, ...]":
        """Hashable identity of the execution shape (backend memoisation key)."""
        return (
            self.seq_len,
            self.num_heads,
            self.head_dim,
            self.mlp_dim,
            tuple(layer.fingerprint() for layer in self.layers),
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(
        cls,
        num_layers: int,
        seq_len: int,
        window_tokens: int = 128,
        num_global_tokens: int = 0,
        num_random_tokens: int = 0,
        random_seed: int = 0,
        **kwargs,
    ) -> "ModelSpec":
        """A depth-``num_layers`` model whose layers all share one geometry.

        The shared-shape case is the one whole-model plan compilation
        amortises hardest: all layers resolve to a single compiled plan.
        """
        if num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {num_layers}")
        geometry = LayerGeometry(
            window_tokens=window_tokens,
            num_global_tokens=num_global_tokens,
            num_random_tokens=num_random_tokens,
            random_seed=random_seed,
        )
        return cls(seq_len=seq_len, layers=(geometry,) * num_layers, **kwargs)

    def describe(self) -> str:
        """One-line human-readable description used in reports and the CLI."""
        distinct = len({layer.fingerprint() for layer in self.layers})
        return (
            f"{self.num_layers} layers x {self.num_heads} heads, seq_len={self.seq_len}, "
            f"hidden={self.hidden_dim}, mlp={self.mlp_dim}, {distinct} distinct shape(s)"
        )
