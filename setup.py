"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` also works in
offline environments where the ``wheel`` package (needed for PEP 660 editable
builds) is unavailable: ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
