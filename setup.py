"""Setuptools entry point.

Carries the full package metadata (there is no ``pyproject.toml``) so that
``pip install -e .`` works in offline environments where the ``wheel``
package (needed for PEP 660 editable builds) is unavailable:
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-swat",
    version="1.5.0",
    description=(
        "Reproduction of SWAT (DAC 2024): window-attention FPGA acceleration, "
        "with a compiled execution-plan IR, whole-model plan compilation, an "
        "async multi-accelerator serving layer and a streaming telemetry/"
        "trace-replay observability layer"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-serve = repro.serving.demo:main",
            "repro-trace = repro.telemetry.trace:main",
        ]
    },
)
