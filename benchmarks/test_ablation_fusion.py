"""Ablation: kernel fusion's effect on off-chip intermediate traffic.

DESIGN.md design decision 1: the fused kernel (Equation 1) never materialises
the S / S' matrices off chip.  The unfused three-step schedule must spill the
banded score tile per row and read it back twice (once for the softmax, once
for the SV product).  This ablation quantifies the traffic both ways.
"""

from repro.core.config import SWATConfig
from repro.core.simulator import SWATSimulator


def _traffic_comparison(seq_len=4096):
    config = SWATConfig.longformer()
    simulator = SWATSimulator(config)
    fused = simulator.estimate_traffic(seq_len).total_bytes
    # Unfused: the banded scores (seq_len x 2w values) are written once and
    # read twice at the datapath precision, on top of the fused traffic.
    score_bytes = seq_len * config.window_tokens * config.element_bytes
    unfused = fused + 3 * score_bytes
    return fused, unfused


def test_fusion_removes_intermediate_traffic(benchmark):
    fused, unfused = benchmark(_traffic_comparison)
    print()
    print(f"off-chip bytes with kernel fusion:    {fused / 1e6:8.1f} MB")
    print(f"off-chip bytes without kernel fusion: {unfused / 1e6:8.1f} MB")
    print(f"traffic reduction: {unfused / fused:.1f}x")
    assert unfused > 2.5 * fused
