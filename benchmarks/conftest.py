"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures and reports
its wall-clock cost via pytest-benchmark.  The regenerated rows/series are
printed so that ``pytest benchmarks/ --benchmark-only -s`` doubles as the
artefact-regeneration command; EXPERIMENTS.md records one such run.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"

try:  # pragma: no cover - environment dependent
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_SRC))
