"""Benchmark: regenerate Figure 3 (execution time and memory vs input length)."""

from repro.experiments import fig3_latency_memory


def test_fig3_latency_and_memory(benchmark):
    result = benchmark(fig3_latency_memory.run)
    print()
    print(result.latency_table.render())
    print(result.memory_table.render())
    # Shape checks: SWAT linear, dense-GPU memory quadratic, SWAT wins at 16K.
    swat = result.latency_ms["SWAT (FPGA|FP16)"]
    assert swat[-1] / swat[-2] < 2.2
    dense_memory = result.memory_mb["Dense (GPU|FP32)"]
    assert dense_memory[-1] / dense_memory[-2] > 3.5
    assert result.latency_ms["SWAT (FPGA|FP32)"][-1] < result.latency_ms["Dense (GPU|FP32)"][-1]
