"""Benchmark: regenerate Figure 9 (energy efficiency vs GPU and Butterfly)."""

import pytest

from repro.experiments import fig9_energy


def test_fig9_energy_efficiency(benchmark):
    result = benchmark(fig9_energy.run)
    print()
    print(result.table.render())
    assert result.series["SWAT FP16 vs. BTF-1"][-1] == pytest.approx(11.4, rel=0.3)
    assert result.series["SWAT FP16 vs. BTF-2"][-1] == pytest.approx(21.9, rel=0.3)
    assert result.series["SWAT FP32 vs. GPU dense"][-1] == pytest.approx(8.4, rel=0.35)
