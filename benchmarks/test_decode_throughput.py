"""Benchmark: autoregressive decode serving — KV residency and block decode.

Two decode-serving acceptance numbers, both on seeded mixed prefill+decode
traces through :func:`~repro.serving.continuous.serve_continuous` (event
scheduler, so decode steps are priced by the vectorized ``step_burst`` path):

* **KV-cache advantage** — tokens/sec of decode steps that cover only the
  newly finalized rows (prompt K/V resident) versus a baseline that
  re-prefills the full sequence for every generated token.  The modelled
  ratio must clear :data:`KV_CACHE_SPEEDUP_FLOOR` (the tentpole acceptance
  criterion).
* **Block decode** — classic ``k=1`` autoregression versus fixed-``k`` and
  adaptive block schedules on a model whose layers alternate attention
  geometry, so every decode step pays per-layer plan switches that larger
  blocks amortise (the diffusion-style parallel-decode scenario priced via
  ``span_cycles``).

``SERVING_DECODE_REQUESTS`` caps the trace size (CI smoke mode); headline
numbers land in ``BENCH_serving.json`` via
:func:`repro.telemetry.artifacts.record_bench`.
"""

import os

from repro.core.config import SWATConfig
from repro.model.spec import LayerGeometry, ModelSpec
from repro.serving.cache import PlanCache
from repro.serving.continuous import serve_continuous
from repro.serving.request import make_decode_request, make_forward_request
from repro.telemetry.artifacts import record_bench

#: Modelled tokens/sec floor for resident-K/V decode over per-token full
#: re-prefill (acceptance criterion; the measured ratio is far higher —
#: decode rows scale with ``new_tokens``, re-prefill rows with
#: ``new_tokens * seq_len``).
KV_CACHE_SPEEDUP_FLOOR = 5.0

#: Generated tokens per decode request.
NEW_TOKENS = 32


def _spec(seq_len=256, num_layers=4, num_heads=2):
    """Layers alternating two attention geometries (two compiled plans)."""
    geometries = (LayerGeometry(window_tokens=8), LayerGeometry(window_tokens=16))
    return ModelSpec(
        seq_len=seq_len,
        layers=tuple(geometries[index % 2] for index in range(num_layers)),
        num_heads=num_heads,
        head_dim=16,
    )


def _request_count():
    return max(8, int(os.environ.get("SERVING_DECODE_REQUESTS", "64")) // 8 * 8)


def _mixed_trace(count, block_size=1, adaptive=False):
    """``count`` decodes interleaved with ``count // 2`` prefill forwards."""
    spec = _spec()
    requests = []
    for index in range(count):
        requests.append(
            make_decode_request(
                spec, new_tokens=NEW_TOKENS, block_size=block_size, adaptive=adaptive
            )
        )
        if index % 2 == 0:
            requests.append(make_forward_request(spec, functional=False))
    return requests


def _reprefill_trace(count):
    """The baseline: every generated token re-prefills the full sequence."""
    spec = _spec()
    requests = []
    for index in range(count):
        requests.extend(
            make_forward_request(spec, functional=False) for _ in range(NEW_TOKENS)
        )
        if index % 2 == 0:
            requests.append(make_forward_request(spec, functional=False))
    return requests


def _serve(requests):
    return serve_continuous(
        requests,
        config=SWATConfig(head_dim=16, window_tokens=8),
        backend="analytical",
        num_shards=2,
        max_batch_size=8,
        iteration_rows=256,
        policy="fcfs",
        scheduler="event",
        plan_cache=PlanCache(),
    )


def test_kv_cache_decode_beats_per_token_reprefill(benchmark):
    """The tentpole acceptance number: resident K/V vs full re-prefill.

    Both runs carry the identical prefill load; only the generation strategy
    differs.  Decode steps advance ``num_layers * num_heads * new_tokens``
    rows per request, the baseline re-prefills ``new_tokens`` full-context
    forwards — the tokens/sec ratio is the modelled value of keeping the
    prompt's K/V resident.
    """
    count = _request_count()
    decode_requests = _mixed_trace(count)
    reprefill_requests = _reprefill_trace(count)

    decode_result = benchmark(_serve, decode_requests)
    decode_stats = decode_result.stats
    baseline_stats = _serve(reprefill_requests).stats

    tokens = count * NEW_TOKENS
    assert decode_stats.decode_tokens == tokens
    assert decode_stats.kv_misses == count
    decode_tps = decode_stats.tokens_per_second
    baseline_tps = tokens / baseline_stats.device_makespan_seconds
    speedup = decode_tps / baseline_tps
    print(
        f"\nKV-cache decode: {decode_tps:.3g} tok/s vs re-prefill "
        f"{baseline_tps:.3g} tok/s ({speedup:.1f}x), "
        f"TTFT p95 {decode_stats.ttft_p95_seconds:.3g}s, "
        f"inter-token p95 {decode_stats.inter_token_p95_seconds:.3g}s"
    )
    record_bench(
        "BENCH_serving.json",
        "kv_cache_decode_speedup",
        {
            "requests": count,
            "new_tokens": NEW_TOKENS,
            "tokens_per_second": round(decode_tps, 3),
            "reprefill_tokens_per_second": round(baseline_tps, 3),
            "speedup": round(speedup, 3),
            "ttft_p95_seconds": decode_stats.ttft_p95_seconds,
            "inter_token_p95_seconds": decode_stats.inter_token_p95_seconds,
        },
    )
    assert speedup >= KV_CACHE_SPEEDUP_FLOOR


def test_block_decode_amortises_layer_switches():
    """k=1 vs fixed-k vs adaptive block decode on the alternating-geometry mix.

    Each decode block walks every layer; with alternating geometries each
    layer walk pays plan-switch fills, so fewer, larger blocks finish the
    same tokens in fewer cycles.  The adaptive ramp (1, 2, 4, ...) lands
    between classic autoregression and the full fixed block.
    """
    count = _request_count() // 2
    throughput = {}
    for label, block_size, adaptive in (
        ("k1", 1, False),
        ("k8", 8, False),
        ("k8_adaptive", 8, True),
    ):
        stats = _serve(_mixed_trace(count, block_size=block_size, adaptive=adaptive)).stats
        throughput[label] = stats.tokens_per_second
        print(f"\nblock decode {label}: {stats.tokens_per_second:.3g} tok/s")
    record_bench(
        "BENCH_serving.json",
        "block_decode_tokens_per_second",
        {"requests": count, **{label: round(value, 3) for label, value in throughput.items()}},
    )
    assert throughput["k8"] > throughput["k1"]
    assert throughput["k8"] >= throughput["k8_adaptive"] >= throughput["k1"]
