"""Benchmark: raw throughput of the cycle-accurate simulator itself.

This is the one benchmark where the *measured time* (rather than the printed
artefact) is the point: it tracks how fast the functional + timing simulation
runs, which bounds the experiment turnaround time of the whole repository.
"""

import numpy as np
import pytest

from repro.attention.dense import dense_attention
from repro.attention.masks import swat_window_mask
from repro.core.config import SWATConfig
from repro.core.simulator import SWATSimulator
from repro.workload.generator import attention_inputs


@pytest.mark.parametrize("seq_len", [256, 1024])
def test_functional_simulation_throughput(benchmark, seq_len):
    config = SWATConfig.longformer(head_dim=64, window_tokens=128)
    simulator = SWATSimulator(config)
    q, k, v = attention_inputs(seq_len, 64, seed=0)
    result = benchmark(simulator.run, q, k, v)
    reference = dense_attention(q, k, v, mask=swat_window_mask(seq_len, 128))
    np.testing.assert_allclose(result.output, reference, atol=1e-9)


def test_analytical_estimate_throughput(benchmark):
    simulator = SWATSimulator(SWATConfig.longformer())
    report = benchmark(simulator.estimate, 16384)
    assert report.cycles > 0
