"""Benchmark: regenerate Table 2 (FPGA resource utilisation)."""

from repro.experiments import table2_resources
from repro.experiments.table2_resources import PAPER_UTILISATION


def test_table2_resource_usage(benchmark):
    table = benchmark(table2_resources.run)
    print()
    print(table.render())
    for row in table.rows:
        design = str(row[0])
        if design.startswith("Butterfly"):
            continue
        measured = dict(zip(table.columns[1:5], row[1:5]))
        for resource, paper_value in PAPER_UTILISATION[design].items():
            assert abs(measured[resource] - paper_value) <= 5.0
