"""Benchmark: serving-level throughput — batching, sharding and plan caching.

Unlike the per-attention benchmarks, these track *request-level* speedups: the
requests/sec of batch-16 stacked dispatch versus the per-request looped
baseline it replaced (the batch-axis refactor's acceptance number), of a
batched multi-shard pool versus sequential single-shard dispatch, the batch
occupancy the dynamic batcher achieves on a mixed-shape arrival mix, and the
wall-time saved by the plan cache on repeated same-shape requests.

``SERVING_THROUGHPUT_REQUESTS`` overrides the request count of the
batched-vs-looped comparison, ``SERVING_CONTINUOUS_REQUESTS`` that of the
continuous-vs-drain scenario, ``SERVING_QUANTUM_SWEEP`` that of the
iteration-quantum sweep and ``SERVING_DIURNAL_REQUESTS`` that of the
event-scheduler diurnal replay; CI sets smaller counts so the speedup floors
still gate every PR without paying the full measurement (smoke mode).

The headline numbers land in ``BENCH_serving.json``
(:func:`repro.telemetry.artifacts.record_bench`), which CI uploads as a
per-run perf artifact.
"""

import os
import time

import numpy as np

from repro.core.config import SWATConfig
from repro.core.scheduler import RowMajorScheduler
from repro.core.simulator import SWATSimulator
from repro.serving.cache import PlanCache
from repro.serving.continuous import (
    bursty_arrivals,
    compare_modes,
    diurnal_arrivals,
    poisson_arrivals,
    serve_continuous,
    swat_request_rate,
)
from repro.serving.engine import ServingEngine
from repro.serving.request import AttentionRequest, make_requests
from repro.telemetry.artifacts import record_bench
from repro.workload.generator import attention_inputs

#: Wall requests/sec floor for batch-16 stacked dispatch over the looped
#: per-request baseline, on the cycle-accurate backend (acceptance criterion).
BATCHED_DISPATCH_SPEEDUP_FLOOR = 3.0
#: Softer floor for the fused host backend: its device clock *is* measured
#: host time, which is noisier than the simulator's modelled clock on shared
#: CI runners (locally it also clears 3x).
FUSED_DISPATCH_SPEEDUP_FLOOR = 2.0
#: Modelled requests/sec floor for continuous over drain admission on the
#: seeded mixed-length high-load trace (acceptance criterion; conservative —
#: the measured ratio is ~1.9x at the smoke count and ~2.4x at the full one).
CONTINUOUS_SPEEDUP_FLOOR = 1.5
#: Iteration-advancement rate floor (iterations priced per wall second) for
#: the event-driven scheduler over the quantum-stepped reference loop on the
#: seeded diurnal trace (the vectorization acceptance criterion).
EVENT_DRIVEN_SPEEDUP_FLOOR = 10.0
#: Cap on the reference-loop leg of the event-vs-reference comparison: the
#: whole point of the event scheduler is that the reference cannot chew
#: through the full 100k-request trace in reasonable time, so its
#: per-iteration rate is measured on this prefix of the same trace.
DIURNAL_REFERENCE_PREFIX = 2_000


def _mixed_requests(count=32):
    seq_lens = [256, 512, 512, 1024]
    return [AttentionRequest(seq_len=seq_lens[i % len(seq_lens)]) for i in range(count)]


def _best_of(fn, rounds=3):
    """Minimum wall time over ``rounds`` runs (filters CI scheduler stalls)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _best_serve(engine, requests, rounds=3):
    """Result with the best wall clock over ``rounds`` serves (filters stalls)."""
    best = None
    for _ in range(rounds):
        result = engine.serve(requests)
        if best is None or result.stats.wall_seconds < best.stats.wall_seconds:
            best = result
    return best


def test_batched_dispatch_beats_looped_baseline_at_batch_16(benchmark):
    """The batch-axis acceptance number: stacked dispatch vs per-request loop.

    Short-row traffic is the regime the refactor targets: per-request work is
    small, so the host-side dispatch the looped baseline pays once per request
    (batcher flush, shard hop, plan lookup, one executor entry per request)
    dominates, and folding sixteen requests into one stacked
    ``PlanBatch`` pass amortises all of it.  Outputs are bit-identical either
    way (property-tested in ``tests/serving/test_batched_execution.py``);
    this benchmark records what the fusion buys in requests/sec.
    """
    config = SWATConfig(head_dim=64, window_tokens=8)
    # Rounded down to a multiple of 16 so every dispatched batch is full and
    # the mean-batch-size assertions below hold for any override value.
    count = max(16, int(os.environ.get("SERVING_THROUGHPUT_REQUESTS", "128")) // 16 * 16)
    requests = make_requests([16] * count, config.head_dim, seed=0)

    speedups = {}
    for backend in ("simulator", "fused"):
        batched_pool = ServingEngine(
            config=config, backend=backend, num_shards=1, max_batch_size=16
        )
        looped_pool = ServingEngine(
            config=config, backend=backend, num_shards=1, max_batch_size=1
        )
        if backend == "simulator":
            benchmark(batched_pool.serve, requests)
        batched = _best_serve(batched_pool, requests)
        looped = _best_serve(looped_pool, requests)
        assert all(done.output is not None for done in batched.completed)
        assert batched.stats.mean_batch_size == 16.0
        assert looped.stats.mean_batch_size == 1.0
        speedups[backend] = (
            batched.stats.wall_requests_per_second / looped.stats.wall_requests_per_second
        )
        print(
            f"\n{backend}: batch-16 {batched.stats.wall_requests_per_second:.0f} req/s "
            f"vs looped {looped.stats.wall_requests_per_second:.0f} req/s "
            f"({speedups[backend]:.2f}x)"
        )
    record_bench(
        "BENCH_serving.json",
        "batched_dispatch_speedup",
        {"requests": count, **{backend: round(value, 3) for backend, value in speedups.items()}},
    )
    # Acceptance property: the stacked dispatch beats the per-request loop
    # by >= 3x on the cycle-accurate backend at batch 16.
    assert speedups["simulator"] >= BATCHED_DISPATCH_SPEEDUP_FLOOR
    assert speedups["fused"] >= FUSED_DISPATCH_SPEEDUP_FLOOR


def test_continuous_batching_beats_drain_on_mixed_length_trace(benchmark):
    """The continuous-batching acceptance number: admission policy, same clock.

    A seeded Poisson trace of mixed-length requests at 5x the pool's
    saturation rate is served under both admission policies on the *same*
    iteration-priced simulated clock (``compare_modes``), so the ratio
    isolates what mid-flight admission/retirement buys: drain holds every
    slot until the batch's slowest request retires (head-of-line blocking
    empties the slots), continuous refills them the next iteration.  A
    seeded bursty (flash-crowd) trace is checked alongside.  Everything is
    deterministic simulated time — no wall-clock in the modelled numbers.
    """
    config = SWATConfig.longformer(window_tokens=128)
    count = max(16, int(os.environ.get("SERVING_CONTINUOUS_REQUESTS", "256")) // 4 * 4)
    seq_lens = [256, 256, 512, 2048] * (count // 4)
    num_shards, max_batch_size = 2, 8
    rate = 5.0 * swat_request_rate(
        config, seq_lens, num_shards=num_shards, max_batch_size=max_batch_size
    )
    requests = make_requests(
        seq_lens,
        config.head_dim,
        functional=False,
        arrival_times=poisson_arrivals(count, rate, seed=0),
    )

    comparison = benchmark(
        compare_modes,
        requests,
        config=config,
        backend="analytical",
        num_shards=num_shards,
        max_batch_size=max_batch_size,
        iteration_rows=128,
    )
    continuous, drain = comparison.continuous.stats, comparison.drain.stats
    print(
        f"\npoisson x5 load: continuous {continuous.requests_per_second:.0f} req/s "
        f"(occupancy {continuous.mean_occupancy:.0%}) vs drain "
        f"{drain.requests_per_second:.0f} req/s (occupancy {drain.mean_occupancy:.0%}) "
        f"= {comparison.speedup:.2f}x; latency p95 "
        f"{continuous.latency_p95_seconds * 1e3:.2f} ms vs "
        f"{drain.latency_p95_seconds * 1e3:.2f} ms"
    )

    bursty_requests = make_requests(
        seq_lens,
        config.head_dim,
        functional=False,
        arrival_times=bursty_arrivals(
            count, burst_size=16, burst_gap=0.0005, seed=0, jitter=1e-5
        ),
    )
    bursty = compare_modes(
        bursty_requests,
        config=config,
        backend="analytical",
        num_shards=num_shards,
        max_batch_size=max_batch_size,
        iteration_rows=128,
    )
    print(f"bursty flash-crowd: {bursty.speedup:.2f}x continuous over drain")

    record_bench(
        "BENCH_serving.json",
        "continuous_over_drain",
        {
            "requests": count,
            "poisson_speedup": round(comparison.speedup, 3),
            "bursty_speedup": round(bursty.speedup, 3),
            "continuous_req_per_s": round(continuous.requests_per_second, 1),
            "drain_req_per_s": round(drain.requests_per_second, 1),
            "continuous_occupancy": round(continuous.mean_occupancy, 4),
            "latency_p95_ms": round(continuous.latency_p95_seconds * 1e3, 3),
        },
    )
    # Acceptance property: >= 1.5x modelled req/s at high mixed-length load,
    # on both arrival patterns, and the gain is slot occupancy, not clock
    # trickery (same step model priced both runs).
    assert comparison.speedup >= CONTINUOUS_SPEEDUP_FLOOR
    assert bursty.speedup >= CONTINUOUS_SPEEDUP_FLOOR
    assert continuous.mean_occupancy > drain.mean_occupancy


def test_iteration_rows_quantum_sweep(benchmark):
    """ROADMAP follow-up: sweep the continuous engine's iteration quantum.

    ``iteration_rows`` trades scheduling granularity (small quanta refill
    freed slots sooner) against per-iteration bookkeeping (every iteration
    is one ``step`` pricing plus one admission pass).  The sweep serves one
    seeded overloaded mixed-length trace at each quantum on the same
    simulated clock and reports modelled requests/sec per quantum —
    everything deterministic, so the table is reproducible bit for bit.
    ``SERVING_QUANTUM_SWEEP`` caps the trace length in CI (smoke mode).
    """
    config = SWATConfig.longformer(window_tokens=128)
    count = max(16, int(os.environ.get("SERVING_QUANTUM_SWEEP", "256")) // 4 * 4)
    seq_lens = [256, 256, 512, 2048] * (count // 4)
    num_shards, max_batch_size = 2, 8
    rate = 5.0 * swat_request_rate(
        config, seq_lens, num_shards=num_shards, max_batch_size=max_batch_size
    )
    requests = make_requests(
        seq_lens,
        config.head_dim,
        functional=False,
        arrival_times=poisson_arrivals(count, rate, seed=0),
    )

    quanta = (32, 64, 128, 256, 512)

    def serve_at(quantum):
        return serve_continuous(
            requests,
            config=config,
            backend="analytical",
            num_shards=num_shards,
            max_batch_size=max_batch_size,
            iteration_rows=quantum,
            plan_cache=PlanCache(),
        )

    results = {quantum: serve_at(quantum) for quantum in quanta}
    benchmark(serve_at, 128)

    print(f"\niteration-rows quantum sweep ({count} requests, Poisson x5 load):")
    for quantum, result in results.items():
        stats = result.stats
        print(
            f"  quantum {quantum:>4}: {stats.requests_per_second:8.0f} req/s, "
            f"{stats.num_iterations:5d} iterations, "
            f"occupancy {stats.mean_occupancy:.0%}, "
            f"latency p95 {stats.latency_p95_seconds * 1e3:.2f} ms"
        )

    for quantum, result in results.items():
        # Every quantum serves the full trace with positive modelled
        # throughput; coarser quanta never do more iterations than finer.
        assert len(result.completed) == count, quantum
        assert result.stats.requests_per_second > 0, quantum
    iteration_counts = [results[quantum].stats.num_iterations for quantum in quanta]
    assert iteration_counts == sorted(iteration_counts, reverse=True)


def test_event_scheduler_replays_100k_diurnal_trace_in_seconds(benchmark):
    """The event-scheduler acceptance number: a day of traffic in seconds.

    A seeded day/night (diurnal) trace — 100k long-context requests by
    default, ten full rate cycles, fully modulated so the trough goes silent
    — saturates a single SWAT device at a fine 32-row scheduling quantum,
    the regime where the old loop's per-iteration bookkeeping dominated
    (ROADMAP item 3).  The event-driven scheduler skips the clock across
    quiet stretches and prices each fixed-resident burst in one vectorized
    call; the quantum-stepped reference loop prices the *same* trace one
    Python ``step`` per iteration, so its per-iteration wall rate is
    measured on a prefix (``DIURNAL_REFERENCE_PREFIX``) and the ratio of
    iterations-priced-per-second is the vectorization speedup.  Both legs
    are bit-identical in every modelled number (asserted here on the prefix,
    property-tested in ``tests/serving/test_continuous.py``), so the ratio
    is pure host-side scheduling cost — no accounting shortcut.
    """
    config = SWATConfig.longformer(window_tokens=128)
    count = max(16, int(os.environ.get("SERVING_DIURNAL_REQUESTS", "100000")) // 4 * 4)
    seq_lens = [8192, 8192, 16384, 16384] * (count // 4)
    num_shards, max_batch_size, iteration_rows = 1, 4, 32
    mean_rate = 0.9 * swat_request_rate(
        config, seq_lens, num_shards=num_shards, max_batch_size=max_batch_size
    )
    period = count / mean_rate / 10.0
    requests = make_requests(
        seq_lens,
        config.head_dim,
        functional=False,
        arrival_times=diurnal_arrivals(
            count, mean_rate, period, amplitude=0.95, seed=0
        ),
    )

    def serve_with(scheduler, subset, rounds):
        best = None
        for _ in range(rounds):
            result = serve_continuous(
                subset,
                config=config,
                backend="analytical",
                num_shards=num_shards,
                max_batch_size=max_batch_size,
                iteration_rows=iteration_rows,
                scheduler=scheduler,
                record_iterations=False,
                plan_cache=PlanCache(),
            )
            if best is None or result.stats.wall_seconds < best.stats.wall_seconds:
                best = result
        return best

    # One full-trace round when the trace is big (it is the measurement);
    # best-of-3 at smoke counts where wall noise would otherwise dominate.
    full_rounds = 1 if count > 2 * DIURNAL_REFERENCE_PREFIX else 3
    event = benchmark.pedantic(
        serve_with, args=("event", requests, full_rounds), rounds=1, iterations=1
    )
    prefix = requests[:DIURNAL_REFERENCE_PREFIX]
    reference = serve_with("reference", prefix, rounds=2)
    event_prefix = serve_with("event", prefix, rounds=1)

    # The prefix leg doubles as the bit-identity gate: same trace, same
    # modelled numbers, to the last bit, scheduler-independent.
    from dataclasses import fields as stats_fields

    for spec in stats_fields(type(reference.stats)):
        if spec.name == "wall_seconds":
            continue
        assert getattr(event_prefix.stats, spec.name) == getattr(
            reference.stats, spec.name
        ), spec.name

    event_rate = event.stats.num_iterations / event.stats.wall_seconds
    reference_rate = reference.stats.num_iterations / reference.stats.wall_seconds
    speedup = event_rate / reference_rate
    print(
        f"\ndiurnal trace, {count} requests over 10 rate cycles: event scheduler "
        f"priced {event.stats.num_iterations} iterations in "
        f"{event.stats.wall_seconds:.2f} s wall "
        f"({event_rate:,.0f} iterations/s) vs reference "
        f"{reference_rate:,.0f} iterations/s on the "
        f"{len(prefix)}-request prefix = {speedup:.1f}x"
    )
    record_bench(
        "BENCH_serving.json",
        "event_scheduler_diurnal",
        {
            "requests": count,
            "iterations": event.stats.num_iterations,
            "event_wall_seconds": round(event.stats.wall_seconds, 3),
            "event_iterations_per_s": round(event_rate, 1),
            "reference_iterations_per_s": round(reference_rate, 1),
            "speedup": round(speedup, 2),
        },
    )
    assert len(event.completed) == count
    # Acceptance property: the event scheduler advances priced iterations
    # >= 10x faster than the quantum-stepped loop it replaced.
    assert speedup >= EVENT_DRIVEN_SPEEDUP_FLOOR


def test_drain_mode_stays_bit_identical_under_continuous_refactor():
    """The other half of the acceptance criterion: the drain path is frozen.

    The continuous engine rides beside the drain path, not through it: a
    default-mode ``ServingEngine`` must produce the same outputs, the same
    batch pricing (``batch_attention_cycles``) and an unchanged stats schema,
    and continuous-mode outputs must match the drain outputs bit for bit.
    """
    config = SWATConfig(head_dim=64, window_tokens=8)
    requests = make_requests([16, 48, 16, 32, 48, 16, 32, 16], config.head_dim, seed=0)
    drain = ServingEngine(
        config=config, backend="simulator", num_shards=1, max_batch_size=4
    ).serve(requests)
    assert drain.stats.mode == "drain"
    assert drain.stats.num_iterations == 0 and drain.iterations == ()
    rendered = drain.stats.render()
    assert "mean batch size" in rendered and "mode" not in rendered.splitlines()[2]

    continuous = serve_continuous(
        requests, config=config, backend="simulator", max_batch_size=4, iteration_rows=16
    )
    for drain_done, continuous_done in zip(drain.completed, continuous.completed):
        assert drain_done.request.request_id == continuous_done.request.request_id
        assert np.array_equal(drain_done.output, continuous_done.output)


def test_batched_multishard_beats_sequential_single_shard(benchmark):
    """The headline serving speedup: dynamic batching + 4-way sharding."""
    config = SWATConfig.longformer(window_tokens=128)
    requests = _mixed_requests(32)
    pool = ServingEngine(config=config, backend="analytical", num_shards=4, max_batch_size=8)
    batched = benchmark(pool.serve, requests)
    sequential = ServingEngine(
        config=config, backend="analytical", num_shards=1, max_batch_size=1
    ).serve(requests)

    batched_rps = batched.stats.requests_per_second
    sequential_rps = sequential.stats.requests_per_second
    print(
        f"\nrequests/sec: batched 4-shard {batched_rps:.0f} vs sequential "
        f"{sequential_rps:.0f} ({batched_rps / sequential_rps:.2f}x), "
        f"batch occupancy {batched.stats.batch_occupancy:.0%}"
    )
    record_bench(
        "BENCH_serving.json",
        "multishard_over_sequential",
        {
            "batched_req_per_s": round(batched_rps, 1),
            "sequential_req_per_s": round(sequential_rps, 1),
            "speedup": round(batched_rps / sequential_rps, 3),
        },
    )
    # Acceptance property: strictly higher device throughput for the same set.
    assert batched_rps > sequential_rps
    assert batched.stats.batch_occupancy > 0.5


def test_functional_serving_wall_throughput(benchmark):
    """Wall-clock requests/sec of the functional (cycle-accurate) pool."""
    config = SWATConfig.longformer(window_tokens=64)
    requests = make_requests([256] * 8, config.head_dim, seed=0)
    engine = ServingEngine(config=config, backend="simulator", num_shards=2, max_batch_size=4)
    result = benchmark(engine.serve, requests)
    stats = result.stats
    print(
        f"\nfunctional pool: {stats.wall_requests_per_second:.1f} req/s wall, "
        f"{stats.requests_per_second:.0f} req/s device, "
        f"cache hit rate {stats.cache_hit_rate:.0%}"
    )
    assert all(done.output is not None for done in result.completed)
    assert stats.num_requests == 8


def test_plan_cache_speedup_on_repeated_shapes(benchmark):
    """Schedule reuse: repeated same-shape requests skip the per-shape build."""
    config = SWATConfig.bigbird(window_tokens=64, num_global_tokens=16, num_random_tokens=16)
    seq_len = 768
    repeats = 8

    def cold_run():
        for _ in range(repeats):
            RowMajorScheduler(config, seq_len).plans()

    def warm_run():
        cache = PlanCache()
        for _ in range(repeats):
            cache.lookup(config, seq_len)
        return cache

    cold_seconds = _best_of(cold_run, rounds=2)
    cache = benchmark(warm_run)
    warm_seconds = _best_of(warm_run, rounds=2)

    print(
        f"\nschedule path for {repeats} same-shape requests: "
        f"cold {cold_seconds * 1e3:.1f} ms vs cached {warm_seconds * 1e3:.1f} ms "
        f"({cold_seconds / warm_seconds:.1f}x)"
    )
    assert cache.hits == repeats - 1
    # Acceptance property: the cache makes repeated same-shape requests
    # measurably faster (one build + hits vs a build per request).
    assert warm_seconds < cold_seconds


def test_cached_simulation_end_to_end_speedup():
    """Whole-run effect: cached SWATSimulator.run beats uncached on repeats."""
    config = SWATConfig(head_dim=64, window_tokens=64, num_random_tokens=8)
    q, k, v = attention_inputs(512, 64, seed=0)
    repeats = 4

    cold_simulator = SWATSimulator(config)

    def cold_run():
        for _ in range(repeats):
            cold_simulator.run(q, k, v)

    warm_simulator = SWATSimulator(config, plan_cache=PlanCache())
    warm_simulator.run(q, k, v)  # prime the cache

    def warm_run():
        for _ in range(repeats):
            warm_simulator.run(q, k, v)

    cold_seconds = _best_of(cold_run, rounds=2)
    warm_seconds = _best_of(warm_run, rounds=2)

    print(
        f"\nend-to-end {repeats} repeated runs: cold {cold_seconds * 1e3:.0f} ms "
        f"vs cached {warm_seconds * 1e3:.0f} ms ({cold_seconds / warm_seconds:.2f}x)"
    )
    assert warm_seconds < cold_seconds
