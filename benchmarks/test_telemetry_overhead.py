"""Benchmark: telemetry instrumentation must be free when nobody listens.

The hot paths (continuous iteration loop, drain dispatch, plan-cache lookup)
are instrumented behind ``if bus.active`` guards, so a run with zero event
subscribers pays one branch per would-be event and never constructs the
event object.  This suite holds that property to a number: modelled
throughput of an instrumented-but-unsubscribed continuous run must stay
within ``TELEMETRY_OVERHEAD_TOLERANCE`` (default 2%) of the uninstrumented
baseline, measured as interleaved best-of wall times so scheduler noise
cancels instead of accumulating on one side.

``TELEMETRY_OVERHEAD_REQUESTS`` caps the trace length (CI smoke mode).  The
measured ratio lands in ``BENCH_serving.json`` next to the throughput
numbers.
"""

import os
import time

from repro.core.config import SWATConfig
from repro.serving.cache import PlanCache
from repro.serving.continuous import poisson_arrivals, serve_continuous, swat_request_rate
from repro.serving.request import make_requests
from repro.telemetry import EventBus
from repro.telemetry.artifacts import record_bench

#: Zero-subscriber instrumentation may cost at most this wall-time ratio.
OVERHEAD_TOLERANCE = float(os.environ.get("TELEMETRY_OVERHEAD_TOLERANCE", "1.02"))


def _trace(config, count):
    seq_lens = [256, 256, 512, 1024] * (count // 4)
    rate = 5.0 * swat_request_rate(config, seq_lens, num_shards=2, max_batch_size=8)
    return make_requests(
        seq_lens,
        config.head_dim,
        functional=False,
        arrival_times=poisson_arrivals(len(seq_lens), rate, seed=0),
    )


def test_zero_subscriber_instrumentation_is_free(benchmark):
    """Instrumented continuous serving with no sinks stays within tolerance."""
    config = SWATConfig.longformer(window_tokens=128)
    count = max(16, int(os.environ.get("TELEMETRY_OVERHEAD_REQUESTS", "256")) // 4 * 4)
    requests = _trace(config, count)
    idle_bus = EventBus()  # active stays False: every emit site is one branch

    def serve(bus):
        return serve_continuous(
            requests,
            config=config,
            backend="analytical",
            num_shards=2,
            max_batch_size=8,
            iteration_rows=128,
            plan_cache=PlanCache(bus=bus) if bus is not None else PlanCache(),
            bus=bus,
        )

    # Warm both paths (imports, caches), then interleave the timed rounds so
    # drift (CPU frequency, page cache) hits both variants equally.
    baseline_result = serve(None)
    instrumented_result = serve(idle_bus)

    def modelled(stats):
        record = stats.to_dict()
        # Wall-clock fields jitter run to run; everything modelled must match.
        return {key: value for key, value in record.items() if "wall" not in key}

    assert modelled(instrumented_result.stats) == modelled(baseline_result.stats)

    rounds = 5
    baseline_best = instrumented_best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        serve(None)
        baseline_best = min(baseline_best, time.perf_counter() - start)
        start = time.perf_counter()
        serve(idle_bus)
        instrumented_best = min(instrumented_best, time.perf_counter() - start)

    benchmark(serve, idle_bus)
    ratio = instrumented_best / baseline_best
    print(
        f"\nzero-subscriber telemetry: instrumented {instrumented_best * 1e3:.1f} ms "
        f"vs baseline {baseline_best * 1e3:.1f} ms ({ratio:.4f}x, "
        f"tolerance {OVERHEAD_TOLERANCE:.2f}x, {count} requests)"
    )
    record_bench(
        "BENCH_serving.json",
        "telemetry_zero_subscriber_overhead",
        {
            "requests": count,
            "baseline_ms": round(baseline_best * 1e3, 3),
            "instrumented_ms": round(instrumented_best * 1e3, 3),
            "ratio": round(ratio, 4),
            "tolerance": OVERHEAD_TOLERANCE,
        },
    )
    # Acceptance property: no subscribers -> no measurable cost.
    assert ratio <= OVERHEAD_TOLERANCE


def test_subscribed_bus_actually_collects(benchmark):
    """Sanity counterpart: with a sink subscribed the same run emits events."""
    config = SWATConfig.longformer(window_tokens=128)
    requests = _trace(config, 32)
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    result = benchmark.pedantic(
        lambda: serve_continuous(
            requests,
            config=config,
            backend="analytical",
            num_shards=2,
            max_batch_size=8,
            iteration_rows=128,
            plan_cache=PlanCache(bus=bus),
            bus=bus,
        ),
        iterations=1,
        rounds=1,
    )
    assert len(result.completed) == 32
    kinds = {type(event).kind for event in events}
    assert {"run_started", "request_retired", "iteration_advanced", "run_finished"} <= kinds
