"""Benchmark: regenerate Figure 1 (FLOPs/MOPs breakdown vs input length)."""

from repro.experiments import fig1_flops


def test_fig1_flops_mops_breakdown(benchmark):
    tables = benchmark(fig1_flops.run)
    print()
    print(tables["flops"].render())
    print(tables["mops"].render())
    # The paper's motivation: attention dominates both budgets at long lengths.
    assert tables["flops"].column("attention")[-1] > 0.5
    assert tables["mops"].column("attention")[-1] > 0.8
