"""Benchmark: regenerate Table 4 (window vs FFT vision models at matched size)."""

from repro.experiments import table4_vision_accuracy


def test_table4_vision_accuracy_reduced_budget(benchmark):
    result = benchmark.pedantic(
        lambda: table4_vision_accuracy.run(num_train=192, num_test=64, epochs=6),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.measured_table.render())
    print(result.reference_table.render())
    assert len(result.measured) == 4
    for entry in result.measured.values():
        assert 0.0 <= entry["top1"] <= 100.0
