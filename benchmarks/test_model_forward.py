"""Benchmark: whole-model plans — compile amortisation and forward serving.

The acceptance numbers of the ``repro.model`` subsystem:

* compiling a shared-shape L-layer :class:`~repro.model.plan.ModelPlan`
  amortises the per-shape schedule build >= 5x over compiling each layer's
  plan independently (the layer-by-layer cost whole-model compilation
  replaces);
* serving one whole-model forward beats the modelled throughput of serving
  its L attention layers as independent requests (the pipeline fill is paid
  once per forward, not once per layer).

``MODEL_PLAN_LAYERS`` caps the model depth so CI runs a smoke-sized model
while keeping both floors gating every PR.

The headline numbers land in ``BENCH_model.json``
(:func:`repro.telemetry.artifacts.record_bench`), which CI uploads as a
per-run perf artifact.
"""

import os
import time

import numpy as np

from repro.core.config import SWATConfig
from repro.core.plan import compile_plan
from repro.model import ModelExecutor, ModelPlanCompiler, ModelSpec, forward_inputs
from repro.serving.cache import PlanCache
from repro.serving.engine import ServingEngine
from repro.serving.request import make_forward_request, make_request
from repro.telemetry.artifacts import record_bench

#: Wall-time floor for whole-model plan compilation over L independent
#: per-layer builds when all layers share one shape (acceptance criterion;
#: measured ~12x at the default depth, ~8x at the CI smoke depth).
PLAN_COMPILE_AMORTISATION_FLOOR = 5.0

#: Model depth; MODEL_PLAN_LAYERS caps it in CI (smoke mode).
NUM_LAYERS = max(2, int(os.environ.get("MODEL_PLAN_LAYERS", "12")))


def _best_of(fn, rounds=3):
    """Minimum wall time over ``rounds`` runs (filters CI scheduler stalls)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_plan_compile_amortisation_on_shared_shapes(benchmark):
    """>= 5x: one schedule build for L same-shape layers vs one per layer.

    The BigBird-style geometry makes each build substantial (the seeded
    random-table draw dominates), which is exactly the cost a whole-model
    compile pays once: the compiler resolves one plan per *distinct* shape
    and maps all L layers onto it.
    """
    base = SWATConfig.bigbird(window_tokens=64, num_global_tokens=16, num_random_tokens=16)
    seq_len = 2048
    spec = ModelSpec.uniform(
        NUM_LAYERS,
        seq_len,
        window_tokens=64,
        num_global_tokens=16,
        num_random_tokens=16,
        num_heads=2,
        head_dim=base.head_dim,
    )

    def layerwise_builds():
        for layer in range(spec.num_layers):
            compile_plan(spec.layer_config(layer, base=base), seq_len)

    def whole_model_build():
        return ModelPlanCompiler(base_config=base, plan_cache=PlanCache()).compile(spec)

    plan = benchmark(whole_model_build)
    layerwise_seconds = _best_of(layerwise_builds)
    whole_seconds = _best_of(whole_model_build)
    amortisation = layerwise_seconds / whole_seconds

    print(
        f"\n{spec.num_layers} shared-shape layers: layerwise "
        f"{layerwise_seconds * 1e3:.1f} ms vs whole-model "
        f"{whole_seconds * 1e3:.1f} ms ({amortisation:.1f}x); "
        f"{plan.num_shapes} compiled plan(s)"
    )
    record_bench(
        "BENCH_model.json",
        "plan_compile_amortisation",
        {
            "layers": spec.num_layers,
            "layerwise_ms": round(layerwise_seconds * 1e3, 3),
            "whole_model_ms": round(whole_seconds * 1e3, 3),
            "amortisation": round(amortisation, 3),
        },
    )
    assert plan.num_shapes == 1
    # Acceptance property: >= 5x plan-compile amortisation when layers share
    # shapes.
    assert amortisation >= PLAN_COMPILE_AMORTISATION_FLOOR


def test_whole_model_serve_beats_layerwise_attention_serves(benchmark):
    """One forward >= the modelled throughput of L independent attention serves.

    Both sides stream the same L x H x seq_len head-rows on the same
    analytical SWAT clock; the forward pays one pipeline fill while the L
    independent serves pay one per dispatch, so the whole-model path's
    head-rows/sec is strictly higher.
    """
    config = SWATConfig.longformer(window_tokens=64)
    seq_len = 64
    num_heads = 2
    spec = ModelSpec.uniform(
        NUM_LAYERS, seq_len, window_tokens=64, num_heads=num_heads, head_dim=config.head_dim
    )
    forward = make_forward_request(spec, functional=False)
    layerwise = [
        make_request(seq_len, config.head_dim, num_heads=num_heads, functional=False)
        for _ in range(spec.num_layers)
    ]

    pool = ServingEngine(config=config, backend="analytical", num_shards=1, max_batch_size=1)
    forward_result = benchmark(pool.serve, [forward])
    layerwise_result = ServingEngine(
        config=config, backend="analytical", num_shards=1, max_batch_size=1
    ).serve(layerwise)

    forward_stats = forward_result.stats
    layerwise_stats = layerwise_result.stats
    assert forward_stats.total_head_rows == layerwise_stats.total_head_rows
    ratio = forward_stats.head_rows_per_second / layerwise_stats.head_rows_per_second
    print(
        f"\n{spec.num_layers}-layer forward: {forward_stats.head_rows_per_second:.3g} "
        f"head-rows/s vs {layerwise_stats.head_rows_per_second:.3g} for "
        f"{spec.num_layers} independent attention serves ({ratio:.3f}x, "
        f"fill paid once vs {spec.num_layers} times)"
    )
    record_bench(
        "BENCH_model.json",
        "whole_model_over_layerwise",
        {
            "layers": spec.num_layers,
            "forward_head_rows_per_s": round(forward_stats.head_rows_per_second, 1),
            "layerwise_head_rows_per_s": round(layerwise_stats.head_rows_per_second, 1),
            "ratio": round(ratio, 4),
        },
    )
    # Acceptance property: whole-model serving is never slower than the
    # L-independent-serves baseline, and strictly faster for L > 1.
    assert ratio >= 1.0
    assert forward_stats.device_makespan_seconds < layerwise_stats.device_makespan_seconds


def test_stacked_forward_executor_vs_layerwise_reference(benchmark):
    """Wall time of the stacked executor against the per-head module stack.

    Bit-identity is the hard requirement (asserted here and property-tested
    in ``tests/model``); the recorded times show what the stacked pass and
    the autograd-free mirrors buy on the host.
    """
    config = SWATConfig.longformer(window_tokens=64, head_dim=32)
    spec = ModelSpec.uniform(
        min(NUM_LAYERS, 6), 256, window_tokens=64, num_heads=4, head_dim=32
    )
    executor = ModelExecutor(spec, base_config=config, plan_cache=PlanCache())
    x = forward_inputs(spec, seed=0)

    fast = benchmark(executor.forward, x)
    reference = executor.reference_forward(x)
    assert np.array_equal(fast, reference)

    fast_seconds = _best_of(lambda: executor.forward(x))
    reference_seconds = _best_of(lambda: executor.reference_forward(x))
    print(
        f"\n{spec.num_layers}-layer forward ({spec.num_heads} heads, seq 256): "
        f"stacked {fast_seconds * 1e3:.1f} ms vs layer-by-layer reference "
        f"{reference_seconds * 1e3:.1f} ms "
        f"({reference_seconds / fast_seconds:.2f}x), bit-identical"
    )
