"""Benchmark: regenerate Table 3 (accuracy gains over full-FFT Butterfly).

The full-budget run (all five model rows, four tasks, 16 epochs) takes several
minutes and its outcome is recorded in EXPERIMENTS.md.  The benchmark uses a
reduced budget — two tasks with the strongest locality signal and three model
rows — so that ``pytest benchmarks/ --benchmark-only`` stays within a few
minutes while still exercising the full training pipeline.
"""

from repro.experiments import table3_lra_accuracy
from repro.nn.data import make_listops_task, make_pathfinder_task


def test_table3_accuracy_gains_reduced_budget(benchmark):
    settings = table3_lra_accuracy.ExperimentSettings(
        num_train=192, num_test=64, epochs=6, dim=24, num_layers=2, num_heads=2, window=6
    )
    tasks = {
        "pathfinder": make_pathfinder_task(num_train=192, num_test=64, seq_len=48, seed=1),
        "listops": make_listops_task(num_train=192, num_test=64, num_groups=4, group_size=8, seed=3),
    }

    def run_reduced():
        return table3_lra_accuracy.run(
            settings=settings, tasks=tasks, model_names=("Longformer", "BigBird", "BTF-1")
        )

    result = benchmark.pedantic(run_reduced, rounds=1, iterations=1)
    print()
    print(result.table.render())
    print("absolute accuracies:", {m: a for m, a in result.accuracies.items()})
    # Every trained model must at least produce valid accuracies; the ordering
    # claim is evaluated on the full-budget run recorded in EXPERIMENTS.md.
    for per_task in result.accuracies.values():
        assert all(0.0 <= value <= 1.0 for value in per_task.values())
