"""Ablation: window sparsity and the input-stationary dataflow.

Two questions from DESIGN.md's design-decision list:

* how much of SWAT's speedup comes from the window sparsity itself — answered
  by comparing against the dense-attention FPGA baseline built from the same
  attention cores;
* how the pipeline stays balanced as the window width and head dimension vary
  — answered by sweeping the design parameters and reporting the initiation
  interval.
"""

from repro.analysis.report import Table
from repro.baselines.dense_fpga import DenseFPGABaseline
from repro.core.config import SWATConfig
from repro.core.pipeline import SWATPipelineModel
from repro.core.simulator import SWATSimulator


def _sparsity_ablation(seq_lens=(1024, 4096, 16384)):
    swat = SWATSimulator(SWATConfig.longformer())
    dense = DenseFPGABaseline(SWATConfig.longformer())
    table = Table(
        title="Ablation: window sparsity vs dense attention on the same core array",
        columns=["input_length", "SWAT ms", "dense-FPGA ms", "speedup"],
    )
    for seq_len in seq_lens:
        swat_ms = swat.estimate(seq_len).seconds * 1e3
        dense_ms = dense.run(seq_len).seconds * 1e3
        table.add_row(seq_len, round(swat_ms, 2), round(dense_ms, 2), round(dense_ms / swat_ms, 1))
    return table


def _balance_sweep():
    table = Table(
        title="Ablation: pipeline balance across design parameters",
        columns=["head_dim", "window_tokens", "II (cycles)", "bottleneck"],
    )
    for head_dim in (32, 64, 128):
        for window_tokens in (256, 512, 1024):
            model = SWATPipelineModel(SWATConfig(head_dim=head_dim, window_tokens=window_tokens))
            table.add_row(
                head_dim, window_tokens, model.initiation_interval, model.timing.bottleneck_stage
            )
    return table


def test_window_sparsity_speedup(benchmark):
    table = benchmark(_sparsity_ablation)
    print()
    print(table.render())
    speedups = table.column("speedup")
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 20


def test_pipeline_balance_sweep(benchmark):
    table = benchmark(_balance_sweep)
    print()
    print(table.render())
    # The QK MAC loop dominates for every configuration with H >= 64: the
    # reduction split keeps ZRED/ROWSUM below the QK initiation interval.
    bottlenecks = set(table.column("bottleneck"))
    assert "QK" in bottlenecks
