"""Benchmark: regenerate Figure 8 (speedup over the Butterfly accelerator)."""

import pytest

from repro.experiments import fig8_speedup


def test_fig8_speedup_over_butterfly(benchmark):
    result = benchmark(fig8_speedup.run)
    print()
    print(result.table.render())
    at_4096 = list(result.input_lengths).index(4096)
    assert result.speedup_vs_btf1[at_4096] == pytest.approx(6.7, rel=0.25)
    assert result.speedup_vs_btf2[at_4096] == pytest.approx(12.2, rel=0.25)
    assert result.speedup_vs_btf1 == sorted(result.speedup_vs_btf1)
