"""Benchmark: compiled-plan build vs legacy per-row build, and end-to-end run().

The plan-IR refactor's acceptance numbers live here: schedule compilation
(:func:`repro.core.plan.compile_plan`) must be at least 5x faster than the
seed's per-row construction (:func:`repro.core.plan.legacy_row_plans`), and
the blocked executor must make the full functional simulation measurably
faster than the per-row execution shape it replaced.

``PLAN_COMPILE_SEQ_LENS`` (comma-separated) overrides the swept sequence
lengths; CI sets it to a single short length so schedule-build regressions
surface on every PR without paying the long-sequence sweep (smoke mode).
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import SWATConfig
from repro.core.plan import (
    compile_plan,
    execute_plan_attention,
    execute_plan_attention_rows,
    legacy_row_plans,
)
from repro.core.simulator import SWATSimulator
from repro.workload.generator import attention_inputs

#: Build-speedup floor asserted at every swept length (acceptance criterion).
BUILD_SPEEDUP_FLOOR = 5.0
#: Floor for the random-attention config, whose compiled build keeps the
#: seeded per-row draw loop (measured ~10x; a lower floor absorbs noisy CI
#: runners where the window-only case has hundreds-fold margin).
RANDOM_BUILD_SPEEDUP_FLOOR = 3.0


def _seq_lens():
    raw = os.environ.get("PLAN_COMPILE_SEQ_LENS", "1024,4096,16384")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _best_of(fn, rounds=3):
    """Minimum wall time over ``rounds`` runs (filters CI scheduler stalls)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("seq_len", _seq_lens())
def test_schedule_build_speedup(benchmark, seq_len):
    """Compiled-plan build vs the legacy per-row build at each sequence length."""
    config = SWATConfig.longformer()  # the paper's standard 2w = 512 setup
    benchmark(compile_plan, config, seq_len)
    compiled_seconds = _best_of(lambda: compile_plan(config, seq_len), rounds=3)
    legacy_seconds = _best_of(lambda: legacy_row_plans(config, seq_len), rounds=2)
    speedup = legacy_seconds / compiled_seconds
    print(
        f"\nschedule build at seq_len={seq_len}: legacy {legacy_seconds * 1e3:.1f} ms vs "
        f"compiled {compiled_seconds * 1e3:.2f} ms ({speedup:.0f}x)"
    )
    assert speedup >= BUILD_SPEEDUP_FLOOR


def test_schedule_build_speedup_with_random_attention(benchmark):
    """BigBird-style configs keep the seeded draw loop but shed the set ops."""
    seq_len = min(_seq_lens())
    config = SWATConfig.bigbird(window_tokens=64, num_global_tokens=16, num_random_tokens=16)
    benchmark(compile_plan, config, seq_len)
    compiled_seconds = _best_of(lambda: compile_plan(config, seq_len), rounds=3)
    legacy_seconds = _best_of(lambda: legacy_row_plans(config, seq_len), rounds=2)
    speedup = legacy_seconds / compiled_seconds
    print(
        f"\nrandom-attention build at seq_len={seq_len}: legacy {legacy_seconds * 1e3:.1f} ms "
        f"vs compiled {compiled_seconds * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= RANDOM_BUILD_SPEEDUP_FLOOR


def test_end_to_end_run_wall_time(benchmark):
    """Full ``SWATSimulator.run`` wall time: blocked executor vs per-row shape."""
    seq_len = min(4096, max(_seq_lens()))
    config = SWATConfig.longformer()
    simulator = SWATSimulator(config)
    q, k, v = attention_inputs(seq_len, config.head_dim, seed=0)

    result = benchmark(simulator.run, q, k, v)

    plan = compile_plan(config, seq_len)
    scale = 1.0 / np.sqrt(config.head_dim)
    blocked_seconds = _best_of(
        lambda: execute_plan_attention(plan, q, k, v, scale=scale), rounds=2
    )
    per_row_seconds = _best_of(
        lambda: execute_plan_attention_rows(plan, q, k, v, scale=scale), rounds=2
    )
    print(
        f"\nend-to-end run at seq_len={seq_len}: per-row executor "
        f"{per_row_seconds * 1e3:.0f} ms vs blocked {blocked_seconds * 1e3:.0f} ms "
        f"({per_row_seconds / blocked_seconds:.1f}x)"
    )
    # Acceptance property: the blocked executor is measurably faster than the
    # per-row execution shape, and the simulation it feeds stays correct.
    assert blocked_seconds < per_row_seconds
    np.testing.assert_allclose(
        result.output, execute_plan_attention_rows(plan, q, k, v, scale=scale), atol=1e-12
    )
