"""Benchmark: regenerate Table 1 (pipeline stage timing)."""

from repro.experiments import table1_pipeline
from repro.experiments.table1_pipeline import PAPER_STAGE_CYCLES


def test_table1_pipeline_stage_timing(benchmark):
    table = benchmark(table1_pipeline.run)
    print()
    print(table.render())
    fp16_row = dict(zip(table.columns[1:-1], table.rows[0][1:-1]))
    assert fp16_row == PAPER_STAGE_CYCLES
