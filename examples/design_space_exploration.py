"""Design-space exploration: window width, precision, clock and pipelines.

Uses the resource, power and pipeline models to sweep SWAT design points the
way an accelerator architect would before committing to synthesis: for each
candidate the script reports the attention-core count, whether it fits the
Alveo U55C, the pipeline initiation interval, the 16K-token latency and the
energy per attention.

Run with ``python examples/design_space_exploration.py``.
"""

from repro import SWATConfig, SWATSimulator
from repro.analysis import Table


def main() -> None:
    seq_len = 16384
    candidates = []
    for window_tokens in (256, 512, 1024):
        for precision in ("fp16", "fp32"):
            for num_pipelines in (1, 2):
                candidates.append(
                    SWATConfig.longformer(
                        precision=precision,
                        window_tokens=window_tokens,
                        num_pipelines=num_pipelines,
                    )
                )

    table = Table(
        title=f"SWAT design-space exploration ({seq_len} tokens, 12 heads)",
        columns=[
            "window",
            "precision",
            "pipelines",
            "fits U55C",
            "DSP %",
            "II (cycles)",
            "latency (ms)",
            "energy (mJ)",
        ],
    )
    for config in candidates:
        simulator = SWATSimulator(config)
        report = simulator.estimate(seq_len, num_heads=12)
        usage = simulator.resources.utilisation_percent()
        table.add_row(
            config.window_tokens,
            config.precision.name,
            config.num_pipelines,
            simulator.resources.fits,
            round(usage["DSP"], 1),
            report.initiation_interval,
            round(report.seconds * 1e3, 2),
            round(report.energy_joules * 1e3, 1),
        )
    print(table.render())
    print()
    feasible = [row for row in table.rows if row[3]]
    best = min(feasible, key=lambda row: row[6])
    print(
        f"Fastest feasible design: window={best[0]}, {best[1]}, {best[2]} pipeline(s) "
        f"-> {best[6]} ms, {best[7]} mJ per 12-head attention"
    )


if __name__ == "__main__":
    main()
