"""Whole-model plans: compile, execute and serve full transformer forwards.

Walks the ``repro.model`` subsystem end to end:

1. build a :class:`~repro.model.spec.ModelSpec` whose layers mix two
   attention geometries (so the plan compiler has shapes to deduplicate);
2. compile it into a :class:`~repro.model.plan.ModelPlan` and show the
   shape groups plus model-wide cycle/traffic aggregates;
3. run the stacked :class:`~repro.model.executor.ModelExecutor` forward and
   check it against the layer-by-layer :mod:`repro.nn` reference, bit for
   bit;
4. serve a batch of forward requests through the serving engine in both
   drain and continuous modes.

Run with ``PYTHONPATH=src python examples/model_forward.py``.
"""

import numpy as np

from repro.core.config import SWATConfig
from repro.model import LayerGeometry, ModelExecutor, ModelSpec, forward_inputs
from repro.serving import ServingEngine, make_forward_request, serve_continuous
from repro.serving.cache import PlanCache


def main() -> None:
    config = SWATConfig.longformer(window_tokens=64, head_dim=32)
    spec = ModelSpec(
        seq_len=256,
        layers=(
            LayerGeometry(window_tokens=64),
            LayerGeometry(window_tokens=64),
            LayerGeometry(window_tokens=128, num_global_tokens=4, num_random_tokens=4),
            LayerGeometry(window_tokens=64),
        ),
        num_heads=2,
        head_dim=32,
    )
    print(f"spec: {spec.describe()}")

    cache = PlanCache()
    executor = ModelExecutor(spec, base_config=config, plan_cache=cache)
    plan = executor.model_plan
    print(f"compiled {plan.num_shapes} plan(s) for {plan.num_layers} layers:")
    for group in plan.groups:
        print(
            f"  layers {group.layer_indices} share one plan "
            f"({group.config.describe()}): {group.cycles} cycles, "
            f"{group.kv_bytes} bytes"
        )
    print(
        f"forward totals: {plan.total_cycles} cycles, {plan.total_seconds * 1e6:.1f} us, "
        f"{plan.total_kv_bytes} KV bytes, {plan.total_energy_joules * 1e3:.3f} mJ, "
        f"{plan.mlp_flops / 1e6:.1f} MFLOP host-side MLP"
    )

    x = forward_inputs(spec, seed=0)
    fast = executor.forward(x)
    reference = executor.reference_forward(x)
    assert np.array_equal(fast, reference)
    print(f"stacked forward == layer-by-layer reference (bit-identical), output {fast.shape}")

    requests = [make_forward_request(spec, seed=seed) for seed in range(8)]
    engine = ServingEngine(
        config=config, backend="simulator", num_shards=2, max_batch_size=4, plan_cache=cache
    )
    result = engine.serve(requests)
    print()
    print(result.stats.to_table("Whole-model forwards, drain engine").render())

    continuous = serve_continuous(
        requests,
        config=config,
        backend="simulator",
        num_shards=2,
        max_batch_size=4,
        plan_cache=PlanCache(),
    )
    assert all(
        np.array_equal(a.output, b.output)
        for a, b in zip(result.completed, continuous.completed)
    )
    print()
    print(continuous.stats.to_table("Same forwards, continuous iteration clock").render())


if __name__ == "__main__":
    main()
