"""Quickstart: simulate one attention head on SWAT and check it against numpy.

Run with ``python examples/quickstart.py``.
"""

import numpy as np

from repro import SWATConfig, SWATSimulator
from repro.attention import dense_attention, swat_window_mask
from repro.workload import attention_inputs


def main() -> None:
    # A scaled-down SWAT instance: 64 attention cores (2w = 64), H = 64, FP16.
    config = SWATConfig.longformer(window_tokens=64)
    simulator = SWATSimulator(config)
    print(f"SWAT configuration: {config.describe()}")

    # One attention head over 512 tokens.
    seq_len = 512
    q, k, v = attention_inputs(seq_len, config.head_dim, seed=0)
    result = simulator.run(q, k, v)

    # The simulator's functional output matches the window-attention reference.
    reference = dense_attention(q, k, v, mask=swat_window_mask(seq_len, config.window_tokens))
    max_error = float(np.max(np.abs(result.output - reference)))
    print(f"max |simulator - reference| = {max_error:.2e}")

    # Cycle-accurate timing, traffic and energy.
    timing = result.timing
    print(f"pipeline initiation interval: {timing.initiation_interval} cycles/row")
    print(f"total cycles: {timing.cycles}  ->  {timing.seconds * 1e3:.3f} ms at {config.clock_mhz:.0f} MHz")
    print(f"board power: {timing.power_w:.1f} W, energy per attention: {timing.energy_joules * 1e3:.2f} mJ")
    print(
        "off-chip traffic: "
        f"{result.traffic.total_bytes / 1e6:.2f} MB "
        f"(K/V transfer efficiency {result.traffic.transfer_efficiency:.0%})"
    )


if __name__ == "__main__":
    main()
