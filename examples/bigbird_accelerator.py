"""BigBird scenario: configuring SWAT's global and random attention cores.

SWAT is a parameterised design (Figure 7 of the paper): beyond the sliding
window it can dedicate attention cores to global tokens (pre-loaded K/V) and
to statically-chosen random tokens (reloaded every row).  This example builds
the paper's BigBird configuration, verifies the functional output against a
masked dense reference, and shows what the extra attention patterns cost in
off-chip traffic, resources and the LOAD-stage latency.

Run with ``python examples/bigbird_accelerator.py``.
"""

import numpy as np

from repro import SWATConfig, SWATSimulator
from repro.attention import dense_attention
from repro.core.scheduler import RowMajorScheduler
from repro.workload import attention_inputs


def main() -> None:
    # Scaled-down versions of the paper's Longformer and BigBird configurations
    # (same 2:2:3 window/global/random proportions as 192/128/192 of Table 2).
    longformer = SWATConfig.longformer(window_tokens=48)
    bigbird = SWATConfig(
        head_dim=64, window_tokens=24, num_global_tokens=8, num_random_tokens=16, random_seed=7
    )

    seq_len = 256
    q, k, v = attention_inputs(seq_len, 64, seed=1)

    for name, config in (("Longformer", longformer), ("BigBird", bigbird)):
        simulator = SWATSimulator(config)
        result = simulator.run(q, k, v)

        # Rebuild the attention mask the scheduler realised and cross-check.
        mask = np.zeros((seq_len, seq_len), dtype=bool)
        for plan in RowMajorScheduler(config, seq_len).plans():
            mask[plan.row, list(plan.attended_keys)] = True
        reference = dense_attention(q, k, v, mask=mask)
        error = float(np.max(np.abs(result.output - reference)))

        print(f"== {name}: {config.describe()}")
        print(f"   functional check vs masked dense reference: max error {error:.2e}")
        print(f"   LOAD stage: {result.timing.stage_cycles['LOAD']} cycles "
              f"(window-only is 66; random attention pays for per-row gathers)")
        print(f"   pipeline II: {result.timing.initiation_interval} cycles/row")
        print(f"   K/V transfer efficiency: {result.traffic.transfer_efficiency:.0%} "
              f"({result.traffic.redundant_kv_bytes / 1e3:.1f} kB redundant)")
        usage = result.resources.utilisation_percent()
        print(f"   resources: DSP {usage['DSP']:.1f}%  LUT {usage['LUT']:.1f}%  "
              f"FF {usage['FF']:.1f}%  BRAM {usage['BRAM']:.1f}%")
        print()


if __name__ == "__main__":
    main()
