"""Accuracy scenario: window attention vs FFT mixing on a locality-driven task.

A miniature version of the paper's Table 3 study: train three small
Transformer classifiers that differ only in their mixing mechanism — sliding
window attention (Longformer-style, supported by SWAT), a BTF-1-style hybrid
(FFT layers with one final softmax-attention layer) and a pure FFT mixer — on
the synthetic Pathfinder task, whose label depends on chaining local adjacency
over a long span.

Run with ``python examples/accuracy_window_vs_fft.py`` (takes about a minute).
"""

from repro.analysis import Table
from repro.nn import Trainer, build_classifier, make_pathfinder_task


def main() -> None:
    task = make_pathfinder_task(num_train=400, num_test=120, seq_len=48, seed=0)
    print(f"task: {task.name}, {task.num_train} train / {task.num_test} test, seq_len={task.seq_len}")

    table = Table(
        title="Window attention vs FFT mixing on the synthetic Pathfinder task",
        columns=["model", "parameters", "train acc", "test acc"],
    )
    configurations = (
        ("Longformer (window attention)", "window", {}),
        ("BTF-1 (FFT + 1 softmax layer)", "hybrid", {"num_softmax_layers": 1}),
        ("Full-FFT (FNet-style mixing)", "fft", {}),
    )
    for label, attention, extra in configurations:
        model = build_classifier(
            attention, task, dim=32, num_layers=2, num_heads=2, window=6, seed=1, **extra
        )
        trainer = Trainer(model, lr=5e-3, batch_size=32, epochs=8, seed=0)
        result = trainer.fit(task, label)
        table.add_row(
            label,
            result.num_parameters,
            round(result.train_accuracy, 3),
            round(result.test_accuracy, 3),
        )
    print(table.render())
    print()
    print(
        "Softmax window attention can resolve the local 'is the path broken here?'\n"
        "predicate directly — the effect behind Table 3 of the paper.  At this tiny\n"
        "model/data scale the outcome is noisy (see EXPERIMENTS.md for the full-budget\n"
        "runs and a discussion of when the ordering does and does not emerge)."
    )


if __name__ == "__main__":
    main()
