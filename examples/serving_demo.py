"""Serving demo: batch, shard and cache attention requests on SWAT.

Programmatic tour of :mod:`repro.serving`: build a mixed-shape request set,
serve it through a batched 4-shard pool of cycle-accurate simulators, verify
one served output against the dense reference, and compare the pool's
requests/sec against sequential single-shard dispatch.

Run with ``python examples/serving_demo.py`` — or use the installed
``repro-serve`` console script for the configurable CLI variant.
"""

import numpy as np

from repro.attention import dense_attention, swat_window_mask
from repro.core.config import SWATConfig
from repro.serving import PlanCache, ServingEngine, make_requests


def main() -> None:
    # A scaled-down SWAT instance served by a pool of four shards.
    config = SWATConfig.longformer(window_tokens=64)
    print(f"SWAT configuration: {config.describe()}")

    # A bursty arrival mix: repeated shapes (cache-friendly) across two sizes.
    seq_lens = [256, 256, 512, 256, 512, 256, 512, 512] * 2
    requests = make_requests(seq_lens, config.head_dim, seed=0)

    pool = ServingEngine(
        config=config,
        backend="simulator",
        num_shards=4,
        max_batch_size=4,
        plan_cache=PlanCache(),
    )
    result = pool.serve(requests)
    print()
    print(result.stats.render())

    # Served outputs are the real attention results: check one end to end.
    first = requests[0]
    reference = dense_attention(
        first.q, first.k, first.v, mask=swat_window_mask(first.seq_len, config.window_tokens)
    )
    max_error = float(np.max(np.abs(result.output_for(first) - reference)))
    print(f"\nmax |served - dense reference| = {max_error:.2e}")

    # The serving-level speedup: same request set, no batching, one shard.
    sequential = ServingEngine(
        config=config, backend="simulator", num_shards=1, max_batch_size=1
    ).serve(requests)
    speedup = result.stats.requests_per_second / sequential.stats.requests_per_second
    print(
        f"batched 4-shard pool: {result.stats.requests_per_second:.0f} req/s (device) "
        f"vs sequential {sequential.stats.requests_per_second:.0f} req/s "
        f"-> {speedup:.2f}x"
    )


if __name__ == "__main__":
    main()
