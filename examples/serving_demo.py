"""Serving demo: batch, shard and cache attention requests on SWAT.

Programmatic tour of :mod:`repro.serving`: build a mixed-shape request set,
serve it through a batched 4-shard pool of cycle-accurate simulators, verify
one served output against the dense reference, compare the pool's
requests/sec (and head-rows/sec) against sequential single-shard dispatch,
then replay a seeded arrival trace through the continuous-batching
scheduler to show what mid-flight admission buys over drain batching.

Run with ``python examples/serving_demo.py`` — or use the installed
``repro-serve`` console script for the configurable CLI variant
(``repro-serve --mode continuous --compare`` for the continuous half).
``--trace diurnal`` swaps the flat Poisson arrivals for a rate-modulated
day-night cycle (``bursty`` clusters them).  Pass ``--events trace.jsonl``
to stream the continuous comparison's telemetry to a JSONL event log —
both runs land in one file (continuous as ``run_id`` 0, drain as 1) — then
inspect it with ``repro-trace``.
"""

import argparse

import numpy as np

from repro.attention import dense_attention, swat_window_mask
from repro.core.config import SWATConfig
from repro.serving import (
    PlanCache,
    ServingEngine,
    bursty_arrivals,
    compare_modes,
    diurnal_arrivals,
    make_requests,
    poisson_arrivals,
    swat_request_rate,
)
from repro.telemetry import EventBus, EventLogWriter


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="stream the continuous comparison's telemetry (both runs) to a "
        "JSONL event log",
    )
    parser.add_argument(
        "--trace",
        default="poisson",
        choices=("poisson", "diurnal", "bursty"),
        help="seeded arrival process for the continuous comparison "
        "(default: poisson)",
    )
    args = parser.parse_args(argv)
    bus = writer = None
    if args.events:
        bus = EventBus()
        writer = EventLogWriter(args.events)
        bus.subscribe(writer)
    try:
        _run(bus, trace=args.trace)
    finally:
        if writer is not None:
            writer.close()
    if args.events:
        print(
            f"\nwrote {writer.events_written} telemetry events to {args.events}; "
            "inspect them with:\n"
            f"  repro-trace summarize {args.events}\n"
            f"  repro-trace replay {args.events} --run-id 0 --strict\n"
            f"  repro-trace watch {args.events} --once --plain"
        )


def _run(bus=None, trace="poisson") -> None:
    # A scaled-down SWAT instance served by a pool of four shards.
    config = SWATConfig.longformer(window_tokens=64)
    print(f"SWAT configuration: {config.describe()}")

    # A bursty arrival mix: repeated shapes (cache-friendly) across two sizes.
    seq_lens = [256, 256, 512, 256, 512, 256, 512, 512] * 2
    requests = make_requests(seq_lens, config.head_dim, seed=0)

    pool = ServingEngine(
        config=config,
        backend="simulator",
        num_shards=4,
        max_batch_size=4,
        plan_cache=PlanCache(),
    )
    result = pool.serve(requests)
    print()
    print(result.stats.render())

    # Served outputs are the real attention results: check one end to end.
    first = requests[0]
    reference = dense_attention(
        first.q, first.k, first.v, mask=swat_window_mask(first.seq_len, config.window_tokens)
    )
    max_error = float(np.max(np.abs(result.output_for(first) - reference)))
    print(f"\nmax |served - dense reference| = {max_error:.2e}")

    # The serving-level speedup: same request set, no batching, one shard.
    sequential = ServingEngine(
        config=config, backend="simulator", num_shards=1, max_batch_size=1
    ).serve(requests)
    speedup = result.stats.requests_per_second / sequential.stats.requests_per_second
    print(
        f"batched 4-shard pool: {result.stats.requests_per_second:.0f} req/s (device) "
        f"vs sequential {sequential.stats.requests_per_second:.0f} req/s "
        f"-> {speedup:.2f}x"
    )
    # Per-head accounting makes multi-head traffic comparable across backends.
    print(
        f"head-rows/sec (device): batched {result.stats.head_rows_per_second:.3g} "
        f"vs sequential {sequential.stats.head_rows_per_second:.3g}"
    )

    # Continuous batching: a seeded arrival trace of mixed lengths at 4x the
    # pool's saturation rate, served with mid-flight admission/retirement and
    # with drain admission on the same simulated clock.  Short requests no
    # longer wait for the batch's slowest member, so the slots stay full.
    trace_lens = [256, 256, 512, 1024] * 8
    rate = 4.0 * swat_request_rate(config, trace_lens, max_batch_size=8)
    if trace == "diurnal":
        arrivals = diurnal_arrivals(
            len(trace_lens), rate, period=len(trace_lens) / rate / 4.0, seed=0
        )
    elif trace == "bursty":
        arrivals = bursty_arrivals(
            len(trace_lens), burst_size=4, burst_gap=4.0 / rate, seed=0
        )
    else:
        arrivals = poisson_arrivals(len(trace_lens), rate, seed=0)
    requests_trace = make_requests(
        trace_lens, config.head_dim, functional=False, arrival_times=arrivals
    )
    comparison = compare_modes(
        requests_trace, config=config, max_batch_size=8, iteration_rows=128, bus=bus
    )
    continuous, drain = comparison.continuous.stats, comparison.drain.stats
    print(
        f"\ncontinuous batching on a {trace} x4 trace: "
        f"{continuous.requests_per_second:.0f} req/s "
        f"(occupancy {continuous.mean_occupancy:.0%}, "
        f"latency p95 {continuous.latency_p95_seconds * 1e3:.2f} ms) vs drain "
        f"{drain.requests_per_second:.0f} req/s "
        f"(occupancy {drain.mean_occupancy:.0%}) -> {comparison.speedup:.2f}x"
    )
    print(
        f"head-rows/sec (device): continuous {continuous.head_rows_per_second:.3g} "
        f"vs drain {drain.head_rows_per_second:.3g}"
    )


if __name__ == "__main__":
    main()
