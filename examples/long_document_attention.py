"""Long-document scenario: scaling window attention to 16K tokens.

Reproduces the paper's motivating comparison (Figure 3) for a long-document
workload: dense attention on a GPU against SWAT in FP16 and FP32, sweeping the
input length from 1K to 16K tokens and reporting latency, memory and energy.

Run with ``python examples/long_document_attention.py``.
"""

from repro import SWATConfig, SWATSimulator
from repro.analysis import Table
from repro.gpu import DenseAttentionGPU, SlidingChunksAttentionGPU


def main() -> None:
    swat_fp16 = SWATSimulator(SWATConfig.longformer())
    swat_fp32 = SWATSimulator(SWATConfig.fp32_reference())
    gpu_dense = DenseAttentionGPU()
    gpu_chunks = SlidingChunksAttentionGPU(window=256)

    table = Table(
        title="Long-document attention: latency (ms) / memory (MB) / energy (mJ) per attention",
        columns=[
            "tokens",
            "GPU dense",
            "GPU chunks",
            "SWAT FP16",
            "SWAT FP32",
            "GPU dense MB",
            "SWAT MB",
            "energy ratio (GPU/SWAT FP16)",
        ],
    )
    for seq_len in (1024, 2048, 4096, 8192, 16384):
        dense = gpu_dense.run(seq_len)
        chunks = gpu_chunks.run(seq_len)
        fp16 = swat_fp16.estimate(seq_len)
        fp32 = swat_fp32.estimate(seq_len)
        table.add_row(
            seq_len,
            round(dense.seconds * 1e3, 2),
            round(chunks.seconds * 1e3, 2),
            round(fp16.seconds * 1e3, 2),
            round(fp32.seconds * 1e3, 2),
            round(dense.memory_bytes / 1e6, 1),
            round(swat_fp16.memory_footprint_bytes(seq_len) / 1e6, 1),
            round(dense.energy_joules / fp16.energy_joules, 1),
        )
    print(table.render())
    print()
    print(
        "SWAT's latency and memory grow linearly with the context length, while the\n"
        "GPU's dense attention grows quadratically — the crossover sits around 8K\n"
        "tokens and the energy advantage grows with the context length."
    )


if __name__ == "__main__":
    main()
